// Package baseline implements the two co-browsing architectures the paper
// positions RCB against (paper §1–§2): URL sharing (lightweight but limited
// to static, session-free pages) and a dedicated co-browsing proxy (full
// synchronization, but a third party carries all traffic). The experiment
// harness and examples use them to demonstrate the failure modes RCB avoids
// and to quantify the architectural overhead a proxy adds.
package baseline

import (
	"fmt"
	"strings"

	"rcb/internal/browser"
	"rcb/internal/dom"
)

// URLShare is the simplest co-browsing "technique": the host sends its
// current URL (over IM, say) and the participant opens it in an independent
// browser with an independent session. ShareResult records what survived
// the trip.
type URLShare struct {
	Host        *browser.Browser
	Participant *browser.Browser
}

// ShareResult reports the outcome of one shared URL.
type ShareResult struct {
	URL string
	// Loaded is whether the participant could load the URL at all.
	Loaded bool
	// SameContent is whether the participant rendered byte-identical body
	// content to what the host currently displays. Dynamic (Ajax-updated)
	// pages fail this even when Loaded.
	SameContent bool
	// Err holds the participant's load error, if any.
	Err error
}

// ShareCurrent sends the host's current URL to the participant and loads it
// there, then compares the resulting documents.
func (u *URLShare) ShareCurrent() ShareResult {
	res := ShareResult{URL: u.Host.URL()}
	if res.URL == "" {
		res.Err = fmt.Errorf("urlshare: host has no page")
		return res
	}
	if _, err := u.Participant.Navigate(res.URL); err != nil {
		res.Err = err
		return res
	}
	res.Loaded = true

	var hostBody, partBody string
	errHost := u.Host.WithDocument(func(_ string, doc *dom.Document) error {
		if doc.Body() != nil {
			hostBody = dom.InnerHTML(doc.Body())
		}
		return nil
	})
	errPart := u.Participant.WithDocument(func(_ string, doc *dom.Document) error {
		if doc.Body() != nil {
			partBody = dom.InnerHTML(doc.Body())
		}
		return nil
	})
	if errHost == nil && errPart == nil {
		res.SameContent = hostBody != "" && hostBody == partBody
	}
	return res
}

// SessionLeaked reports whether the participant ended up inside the host's
// server-side session (it never does with URL sharing — the sessions are
// independent — which is exactly why session-protected pages break).
func (u *URLShare) SessionLeaked(hostName, cookie string) bool {
	hv, hok := u.Host.Jar.Get(hostName, cookie)
	pv, pok := u.Participant.Jar.Get(hostName, cookie)
	return hok && pok && hv == pv
}

// DescribeFailure renders a human-readable diagnosis for demos.
func (r ShareResult) DescribeFailure() string {
	switch {
	case r.Err != nil:
		return fmt.Sprintf("participant could not load %s: %v", r.URL, trimErr(r.Err))
	case !r.SameContent:
		return fmt.Sprintf("participant loaded %s but sees different content (dynamic page or independent session)", r.URL)
	default:
		return "share succeeded (static, session-free page)"
	}
}

func trimErr(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
