package baseline

import (
	"strings"
	"testing"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func setup(t *testing.T) (*sites.Corpus, *browser.Browser, *browser.Browser) {
	t.Helper()
	corpus, err := sites.NewCorpus()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(corpus.Close)
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	t.Cleanup(host.Close)
	part := browser.New("alice.lan", corpus.Network.Dialer("alice.lan"))
	t.Cleanup(part.Close)
	return corpus, host, part
}

func TestURLShareWorksOnStaticPages(t *testing.T) {
	_, host, part := setup(t)
	spec := sites.Table1[1] // google.com: no sessions, static
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		t.Fatal(err)
	}
	share := &URLShare{Host: host, Participant: part}
	res := share.ShareCurrent()
	if !res.Loaded || !res.SameContent {
		t.Fatalf("static share failed: %+v (%s)", res, res.DescribeFailure())
	}
}

func TestURLShareFailsOnDynamicPages(t *testing.T) {
	// The Google-Maps failure mode: after an Ajax update the host's content
	// differs from what the URL fetches (paper §1: "in many dynamically-
	// updated webpages ... the retrieved contents will be different even
	// with the same URL").
	corpus, host, part := setup(t)
	if _, err := host.Navigate("http://" + sites.MapsHost + "/"); err != nil {
		t.Fatal(err)
	}
	ops := sites.MapsOps{Addr: sites.MapsHost, Client: host.Client}
	err := host.ApplyMutation(func(doc *dom.Document) error {
		return ops.Search(doc, "times square")
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = corpus
	share := &URLShare{Host: host, Participant: part}
	res := share.ShareCurrent()
	if !res.Loaded {
		t.Fatalf("load failed: %v", res.Err)
	}
	if res.SameContent {
		t.Fatal("dynamic page share should NOT produce identical content")
	}
	if !strings.Contains(res.DescribeFailure(), "different content") {
		t.Errorf("diagnosis: %s", res.DescribeFailure())
	}
}

func TestURLShareFailsOnSessionPages(t *testing.T) {
	// The cart failure mode: the participant gets a different session, so
	// the shared cart URL shows different (empty) content.
	_, host, part := setup(t)
	if _, err := host.Navigate("http://" + sites.ShopHost + "/"); err != nil {
		t.Fatal(err)
	}
	var form *dom.Node
	host.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("search")
		return nil
	})
	// Host adds an item via direct POST (simplest path to session state).
	if _, err := host.Navigate("http://" + sites.ShopHost + "/product/1"); err != nil {
		t.Fatal(err)
	}
	host.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("addtocart")
		return nil
	})
	if _, err := host.SubmitForm(form, []httpwire.FormField{{Name: "product", Value: "1"}}); err != nil {
		t.Fatal(err)
	}
	// Host is now on /cart with one item. Share it.
	share := &URLShare{Host: host, Participant: part}
	res := share.ShareCurrent()
	if res.Err == nil && res.SameContent {
		t.Fatal("session-protected cart must not share cleanly")
	}
	if share.SessionLeaked("shop.example", "sid") {
		t.Fatal("URL sharing must not propagate sessions")
	}
}

const proxyAddr = "proxy.example:8080"

func startProxy(t *testing.T, corpus *sites.Corpus) *Proxy {
	t.Helper()
	p := NewProxy(corpus.Network.Dialer("proxy.example"))
	t.Cleanup(p.Close)
	l, err := corpus.Network.Listen(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: p}
	srv.Start(l)
	t.Cleanup(srv.Close)
	return p
}

func TestProxyForwardsAndSyncs(t *testing.T) {
	corpus, _, _ := setup(t)
	proxy := startProxy(t, corpus)

	leader := NewProxyMember(corpus.Network.Dialer("leader.lan"), proxyAddr)
	defer leader.Close()
	follower := NewProxyMember(corpus.Network.Dialer("follower.lan"), proxyAddr)
	defer follower.Close()

	spec := sites.Table1[1]
	resp, err := leader.Navigate("http://" + spec.Host() + "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("leader nav: %v %d", err, resp.StatusCode)
	}
	if proxy.Seq() != 1 {
		t.Fatalf("proxy seq = %d", proxy.Seq())
	}
	updated, err := follower.Poll()
	if err != nil || !updated {
		t.Fatalf("follower poll: %v %v", updated, err)
	}
	fPage, fURL := follower.Page()
	lPage, _ := leader.Page()
	if string(fPage) != string(lPage) {
		t.Fatal("follower page differs from leader page")
	}
	if fURL != "http://"+spec.Host()+"/" {
		t.Errorf("follower url = %q", fURL)
	}
	// No change → empty poll.
	updated, err = follower.Poll()
	if err != nil || updated {
		t.Fatalf("idle poll: %v %v", updated, err)
	}
}

func TestProxyRejectsRelativeTargets(t *testing.T) {
	corpus, _, _ := setup(t)
	startProxy(t, corpus)
	c := httpwire.NewClient(corpus.Network.Dialer("x.lan"))
	defer c.Close()
	resp, err := c.Get(proxyAddr, "/not-absolute")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestProxyUpstreamFailure(t *testing.T) {
	corpus, _, _ := setup(t)
	startProxy(t, corpus)
	c := httpwire.NewClient(corpus.Network.Dialer("x.lan"))
	defer c.Close()
	req := httpwire.NewRequest("GET", "http://no.such.host/")
	resp, err := c.Do(proxyAddr, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
}

func TestProxySeesAllTraffic(t *testing.T) {
	// The privacy drawback: every request transits the proxy, including
	// session-protected ones. (With RCB, participant traffic goes only to
	// the host.)
	corpus, _, _ := setup(t)
	proxy := startProxy(t, corpus)
	leader := NewProxyMember(corpus.Network.Dialer("leader.lan"), proxyAddr)
	defer leader.Close()
	if _, err := leader.Navigate("http://" + sites.ShopHost + "/"); err != nil {
		t.Fatal(err)
	}
	page, _ := leader.Page()
	if len(page) == 0 {
		t.Fatal("no page via proxy")
	}
	if proxy.Seq() == 0 {
		t.Fatal("proxy did not observe the leader's page")
	}
}
