package baseline

import (
	"fmt"
	"strconv"
	"sync"

	"rcb/internal/browser"
	"rcb/internal/httpwire"
)

// Proxy is a dedicated co-browsing proxy of the kind the paper's related
// work deploys between browsers and web servers (§2): every member's HTTP
// requests flow through it; the proxy forwards them to origin servers,
// remembers the leader's most recent HTML page, and serves that page to
// followers who poll it. Compared with RCB it needs third-party
// infrastructure, adds a forwarding hop to every byte, and sees all
// traffic (the trust concern §2 raises).
type Proxy struct {
	// Client dials origin servers from the proxy's network location.
	Client *httpwire.Client

	mu      sync.Mutex
	seq     int64
	pageURL string
	page    []byte
}

// NewProxy returns a proxy that reaches origins through dial.
func NewProxy(dial httpwire.Dialer) *Proxy {
	return &Proxy{Client: httpwire.NewClient(dial)}
}

// Close releases the proxy's origin connections.
func (p *Proxy) Close() { p.Client.Close() }

// ServeWire implements httpwire.Handler. Two request shapes are handled:
//
//   - absolute-form targets ("GET http://site/path HTTP/1.1"), the classic
//     proxy protocol: forwarded to the origin; HTML responses from the
//     leader update the shared page;
//   - "/___page?seq=N": the follower polling endpoint, returning the
//     leader's page when newer than N.
func (p *Proxy) ServeWire(req *httpwire.Request) *httpwire.Response {
	if req.Path() == "/___page" {
		return p.servePagePoll(req)
	}
	return p.forward(req)
}

func (p *Proxy) servePagePoll(req *httpwire.Request) *httpwire.Response {
	var since int64
	for _, f := range httpwire.ParseForm(req.Query()) {
		if f.Name == "seq" {
			since, _ = strconv.ParseInt(f.Value, 10, 64)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seq <= since || p.page == nil {
		return httpwire.NewResponse(200, "text/html", nil)
	}
	resp := httpwire.NewResponse(200, "text/html; charset=utf-8", p.page)
	resp.Header.Set("X-Proxy-Seq", strconv.FormatInt(p.seq, 10))
	resp.Header.Set("X-Proxy-Url", p.pageURL)
	return resp
}

func (p *Proxy) forward(req *httpwire.Request) *httpwire.Response {
	if !browser.IsAbsolute(req.Target) {
		return httpwire.NewResponse(400, "text/plain", []byte("proxy requires absolute-form request target\n"))
	}
	addr, err := browser.AddrOf(req.Target)
	if err != nil {
		return httpwire.NewResponse(400, "text/plain", []byte(err.Error()+"\n"))
	}
	fwd := httpwire.NewRequest(req.Method, browser.TargetOf(req.Target))
	fwd.Header = req.Header.Clone()
	fwd.Body = req.Body
	resp, err := p.Client.Do(addr, fwd)
	if err != nil {
		return httpwire.NewResponse(502, "text/plain", []byte(fmt.Sprintf("proxy: upstream %s: %v\n", addr, err)))
	}
	if isHTML(resp) && req.Method == "GET" || req.Method == "POST" && isHTML(resp) {
		p.mu.Lock()
		p.seq++
		p.pageURL = req.Target
		p.page = resp.Body
		p.mu.Unlock()
	}
	return resp
}

func isHTML(resp *httpwire.Response) bool {
	ct := resp.Header.Get("Content-Type")
	return resp.StatusCode == 200 && len(ct) >= 9 && ct[:9] == "text/html"
}

// Seq returns the current shared-page sequence number.
func (p *Proxy) Seq() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// ProxyMember is a browser-side helper that navigates through the proxy
// (absolute-form requests) and polls the shared page. It stands in for the
// applet/snippet a proxy-based system injects into returned pages.
type ProxyMember struct {
	// Client dials the proxy.
	Client *httpwire.Client
	// ProxyAddr is the proxy's address on the network.
	ProxyAddr string

	mu   sync.Mutex
	seq  int64
	page []byte
	url  string
}

// NewProxyMember returns a member reaching the proxy at proxyAddr.
func NewProxyMember(dial httpwire.Dialer, proxyAddr string) *ProxyMember {
	return &ProxyMember{Client: httpwire.NewClient(dial), ProxyAddr: proxyAddr}
}

// Close releases the member's proxy connections.
func (m *ProxyMember) Close() { m.Client.Close() }

// Navigate loads an absolute URL through the proxy (leader role).
func (m *ProxyMember) Navigate(absURL string) (*httpwire.Response, error) {
	req := httpwire.NewRequest("GET", absURL) // absolute-form through a proxy
	resp, err := m.Client.Do(m.ProxyAddr, req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == 200 {
		m.mu.Lock()
		m.page = resp.Body
		m.url = absURL
		m.mu.Unlock()
	}
	return resp, nil
}

// Poll fetches the shared page when it changed since the last poll
// (follower role). It reports whether new content arrived.
func (m *ProxyMember) Poll() (bool, error) {
	m.mu.Lock()
	since := m.seq
	m.mu.Unlock()
	resp, err := m.Client.Get(m.ProxyAddr, fmt.Sprintf("/___page?seq=%d", since))
	if err != nil {
		return false, err
	}
	if len(resp.Body) == 0 {
		return false, nil
	}
	seq, _ := strconv.ParseInt(resp.Header.Get("X-Proxy-Seq"), 10, 64)
	m.mu.Lock()
	m.seq = seq
	m.page = resp.Body
	m.url = resp.Header.Get("X-Proxy-Url")
	m.mu.Unlock()
	return true, nil
}

// Page returns the member's current page bytes and URL.
func (m *ProxyMember) Page() ([]byte, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.page, m.url
}
