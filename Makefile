GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Concurrency regression gate: the single-flight and sharded-lock agent
# paths must stay race-clean.
race:
	$(GO) test -race ./internal/core/

# Serve-path benchmarks plus the BENCH_fanout.json snapshot future PRs
# compare against.
bench:
	$(GO) test -run '^$$' -bench 'FanoutScale|AblationFanout|ConcurrentPoll|MirrorSplice' -benchmem .
	$(GO) run ./cmd/rcb-bench -fanout -out BENCH_fanout.json
