GO ?= go

.PHONY: build test vet race bench fuzz chaos scale

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Concurrency regression gate: the single-flight serve path (content and
# delta), the sharded agent locks, and the long-poll delivery hub must stay
# race-clean across every package that drives them.
race: vet
	$(GO) test -race ./...

# Serve-path, push-path and delta benchmarks plus the JSON snapshots future
# PRs compare against: BENCH_fanout.json (serve scaling), BENCH_delivery.json
# (interval vs long-poll staleness) and BENCH_delta.json (incremental vs
# full apply for a small edit).
bench: vet
	$(GO) test -run '^$$' -bench 'FanoutScale|AblationFanout|ConcurrentPoll|MirrorSplice|LongPollFanout|DuplexFanout|DeltaApply|DeltaRing' -benchmem .
	$(GO) run ./cmd/rcb-bench -fanout -out BENCH_fanout.json
	$(GO) run ./cmd/rcb-bench -delivery -out BENCH_delivery.json
	$(GO) run ./cmd/rcb-bench -delta -site msn.com -out BENCH_delta.json
	$(GO) run ./cmd/rcb-bench -scale -out BENCH_scale.json

# Fault-injection harness: seeded netsim chaos scenarios (lossy/mobile
# links, server restarts, link flaps, forced disconnects) asserting
# byte-identical convergence, exactly-once actions, and close-reason
# discipline — race-enabled, full sweep, including the durability families
# (kill-restore from a checkpoint, live agent handover, partitions). CI runs
# the -short smoke slice; this target is the long local/nightly form. The -timeout
# guarantees a goroutine dump instead of a silent CI hang.
chaos: vet
	$(GO) test ./internal/core -race -count=1 -run 'TestChaos' -timeout 600s

# Scale-out scenario lab: every family (flash-crowd joins, thundering-herd
# wakes, disconnect/rejoin churn, long-haul lossy links, search co-browsing
# roles, writer turns across a handover) at four-digit fleet size, race-
# enabled. CI runs the -short small-N smoke of the same harness; SCENLAB_N
# overrides the fleet size.
scale: vet
	SCENLAB_N=$${SCENLAB_N:-1000} $(GO) test ./internal/scenlab -race -count=1 -timeout 1800s -v

# Brief mutation runs of the native fuzz targets (the checked-in corpora
# under internal/dom/testdata/fuzz, internal/core/testdata/fuzz and
# internal/httpwire/testdata/fuzz run on every plain `go test`). Each target
# must be fuzzed in its own invocation.
fuzz:
	$(GO) test ./internal/dom -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 15s
	$(GO) test ./internal/dom -run '^$$' -fuzz '^FuzzDiffApply$$' -fuzztime 15s
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzUnmarshalDelta$$' -fuzztime 15s
	$(GO) test ./internal/httpwire -run '^$$' -fuzz '^FuzzChannelFrame$$' -fuzztime 15s
