GO ?= go

.PHONY: build test vet race bench fuzz chaos

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Concurrency regression gate: the single-flight serve path (content and
# delta), the sharded agent locks, and the long-poll delivery hub must stay
# race-clean across every package that drives them.
race: vet
	$(GO) test -race ./...

# Serve-path, push-path and delta benchmarks plus the JSON snapshots future
# PRs compare against: BENCH_fanout.json (serve scaling), BENCH_delivery.json
# (interval vs long-poll staleness) and BENCH_delta.json (incremental vs
# full apply for a small edit).
bench: vet
	$(GO) test -run '^$$' -bench 'FanoutScale|AblationFanout|ConcurrentPoll|MirrorSplice|LongPollFanout|DuplexFanout|DeltaApply' -benchmem .
	$(GO) run ./cmd/rcb-bench -fanout -out BENCH_fanout.json
	$(GO) run ./cmd/rcb-bench -delivery -out BENCH_delivery.json
	$(GO) run ./cmd/rcb-bench -delta -site msn.com -out BENCH_delta.json

# Fault-injection harness: seeded netsim chaos scenarios (lossy/mobile
# links, server restarts, link flaps, forced disconnects) asserting
# byte-identical convergence, exactly-once actions, and close-reason
# discipline — race-enabled, full sweep, including the durability families
# (kill-restore from a checkpoint, live agent handover, partitions). CI runs
# the -short smoke slice; this target is the long local/nightly form. The -timeout
# guarantees a goroutine dump instead of a silent CI hang.
chaos: vet
	$(GO) test ./internal/core -race -count=1 -run 'TestChaos' -timeout 600s

# Brief mutation runs of the native fuzz targets (the checked-in corpora
# under internal/dom/testdata/fuzz, internal/core/testdata/fuzz and
# internal/httpwire/testdata/fuzz run on every plain `go test`). Each target
# must be fuzzed in its own invocation.
fuzz:
	$(GO) test ./internal/dom -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 15s
	$(GO) test ./internal/dom -run '^$$' -fuzz '^FuzzDiffApply$$' -fuzztime 15s
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzUnmarshalDelta$$' -fuzztime 15s
	$(GO) test ./internal/httpwire -run '^$$' -fuzz '^FuzzChannelFrame$$' -fuzztime 15s
