GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Concurrency regression gate: the single-flight serve path, the sharded
# agent locks, and the long-poll delivery hub must stay race-clean across
# every package that drives them.
race:
	$(GO) test -race ./...

# Serve-path and push-path benchmarks plus the JSON snapshots future PRs
# compare against: BENCH_fanout.json (serve scaling) and
# BENCH_delivery.json (interval vs long-poll staleness).
bench:
	$(GO) test -run '^$$' -bench 'FanoutScale|AblationFanout|ConcurrentPoll|MirrorSplice|LongPollFanout' -benchmem .
	$(GO) run ./cmd/rcb-bench -fanout -out BENCH_fanout.json
	$(GO) run ./cmd/rcb-bench -delivery -out BENCH_delivery.json
