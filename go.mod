module rcb

go 1.24
