// Package rcb's root benchmark suite: one benchmark per table and figure of
// the paper's evaluation, plus ablation benchmarks for the design decisions
// of §3.2/§3.4. Figures 6–8 report their modeled M-metrics through
// b.ReportMetric (the paper's quantities), while the per-iteration work
// exercises the real code path behind each metric.
//
// Regenerate everything: go test -bench=. -benchmem
// One artifact:          go test -bench=Figure7 / -bench=Table1
package rcb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rcb/internal/benchutil"
	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/experiment"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
	"rcb/internal/sites"
	"rcb/internal/usability"
)

// benchWorld is a live co-browsing session used by the measurement benches.
type benchWorld struct {
	corpus *sites.Corpus
	host   *browser.Browser
	agent  *core.Agent
	server *httpwire.Server
	snip   *core.Snippet
}

func newBenchWorld(b *testing.B, spec sites.SiteSpec) *benchWorld {
	b.Helper()
	corpus, err := sites.NewCorpus()
	if err != nil {
		b.Fatal(err)
	}
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	agent := core.NewAgent(host, "host.lan:3000")
	agent.DefaultCacheMode = true
	l, err := corpus.Network.Listen("host.lan:3000")
	if err != nil {
		b.Fatal(err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		b.Fatal(err)
	}
	pb := browser.New("alice.lan", corpus.Network.Dialer("alice.lan"))
	snip := core.NewSnippet(pb, "http://host.lan:3000", "")
	snip.FetchObjects = false
	if err := snip.Join(); err != nil {
		b.Fatal(err)
	}
	w := &benchWorld{corpus: corpus, host: host, agent: agent, server: server, snip: snip}
	b.Cleanup(func() {
		w.snip.Browser.Close()
		w.agent.Close() // drain parked long-polls before the server drops connections
		w.server.Close()
		w.host.Close()
		w.corpus.Close()
	})
	return w
}

// benchSites is the Table 1 subset exercised per-site by the heavier
// benchmarks: smallest, median-ish, and largest pages. The rcb-bench tool
// and the experiment tests cover all 20.
var benchSites = []string{"google.com", "msn.com", "yahoo.com", "amazon.com"}

// BenchmarkTable1M5 measures content generation (Figure 3 pipeline) per
// site and mode — the M5 columns of Table 1.
func BenchmarkTable1M5(b *testing.B) {
	for _, name := range benchSites {
		spec, _ := sites.SiteByName(name)
		for _, mode := range []struct {
			label string
			cache bool
		}{{"noncache", false}, {"cache", true}} {
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				w := newBenchWorld(b, spec)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.agent.BuildContent(mode.cache); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable1M6 measures snippet-side content application (Figure 5
// pipeline) per site — the M6 column of Table 1.
func BenchmarkTable1M6(b *testing.B) {
	for _, name := range benchSites {
		spec, _ := sites.SiteByName(name)
		b.Run(name, func(b *testing.B) {
			w := newBenchWorld(b, spec)
			prep, err := w.agent.BuildContent(false)
			if err != nil {
				b.Fatal(err)
			}
			content, err := core.Unmarshal(prep.XML())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				doc := freshDoc()
				b.StartTimer()
				if err := core.ApplyContentToDocument(doc, content); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func freshDoc() *dom.Document {
	return dom.Parse(`<!DOCTYPE html><html><head><title>RCB Session</title>` +
		`<script id="rcb-ajax-snippet">/*snippet*/</script></head>` +
		`<body><div id="rcb-status">Connecting...</div></body></html>`)
}

// benchFigure67 runs the full metric pipeline for one site and reports the
// modeled M1/M2 values, while each iteration re-exercises the transfer-time
// model.
func benchFigure67(b *testing.B, env experiment.Environment) {
	for _, name := range benchSites {
		spec, _ := sites.SiteByName(name)
		b.Run(name, func(b *testing.B) {
			res, err := experiment.RunSite(spec, env, experiment.Options{Reps: 1})
			if err != nil {
				b.Fatal(err)
			}
			direct := netsim.LinkModel{Link: env.HostParticipant}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = direct.RequestResponse(res.SyncTxn)
			}
			b.ReportMetric(res.M1.Seconds()*1000, "M1_ms")
			b.ReportMetric(res.M2.Seconds()*1000, "M2_ms")
		})
	}
}

// BenchmarkFigure6LAN regenerates the Figure 6 series (M1 vs M2, LAN).
func BenchmarkFigure6LAN(b *testing.B) { benchFigure67(b, experiment.LAN) }

// BenchmarkFigure7WAN regenerates the Figure 7 series (M1 vs M2, WAN).
func BenchmarkFigure7WAN(b *testing.B) { benchFigure67(b, experiment.WAN) }

// BenchmarkFigure8LAN regenerates the Figure 8 series (M3 vs M4, LAN).
func BenchmarkFigure8LAN(b *testing.B) {
	for _, name := range benchSites {
		spec, _ := sites.SiteByName(name)
		b.Run(name, func(b *testing.B) {
			res, err := experiment.RunSite(spec, experiment.LAN, experiment.Options{Reps: 1})
			if err != nil {
				b.Fatal(err)
			}
			direct := netsim.LinkModel{Link: experiment.LAN.HostParticipant}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = direct.FetchParallel(res.AgentObjTxns, experiment.LAN.Parallelism)
			}
			b.ReportMetric(res.M3.Seconds()*1000, "M3_ms")
			b.ReportMetric(res.M4.Seconds()*1000, "M4_ms")
		})
	}
}

// BenchmarkTable2Scenario runs the full 20-task usability scenario — the
// Table 2 workload end to end over the real stack.
func BenchmarkTable2Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := usability.NewScenario()
		if err != nil {
			b.Fatal(err)
		}
		results := s.Run()
		s.Close()
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("task %s failed: %v", r.ID, r.Err)
			}
		}
	}
}

// BenchmarkSyncRoundTrip measures one complete poll round trip (request,
// timestamp inspection, full content response, Figure 5 application) over
// instant pipes — the end-to-end cost of one synchronization.
func BenchmarkSyncRoundTrip(b *testing.B) {
	spec, _ := sites.SiteByName("msn.com")
	w := newBenchWorld(b, spec)
	if _, err := w.snip.PollOnce(); err != nil {
		b.Fatal(err)
	}
	toggle := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Touch the host page so the poll carries full content.
		toggle = !toggle
		err := w.host.ApplyMutation(func(doc *dom.Document) error {
			doc.Body().SetAttr("data-tick", fmt.Sprint(toggle))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		updated, err := w.snip.PollOnce()
		if err != nil {
			b.Fatal(err)
		}
		if !updated {
			b.Fatal("poll carried no content")
		}
	}
}

// BenchmarkAblationHMAC measures the §3.4 authentication cost per request.
func BenchmarkAblationHMAC(b *testing.B) {
	auth := core.NewAuthenticator(core.NewSessionKey())
	body := []byte("ts=1234567890&actions=%5B%7B%22kind%22%3A%22click%22%7D%5D")
	b.Run("sign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			auth.Sign("POST", "/poll", body)
		}
	})
	b.Run("verify", func(b *testing.B) {
		signed := auth.Sign("POST", "/poll", body)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !auth.Verify("POST", signed, body) {
				b.Fatal("verify failed")
			}
		}
	})
}

// BenchmarkAblationFanout measures end-to-end serving cost (agent serve plus
// participant apply, over the virtual wire) as participants scale — the
// direct communication model under load, in both content modes: "full"
// resends the whole Figure 4 snapshot per change (the paper's protocol),
// "delta" ships the incremental deltaContent script for the same small edit.
func BenchmarkAblationFanout(b *testing.B) {
	spec, _ := sites.SiteByName("google.com")
	for _, mode := range []string{"full", "delta"} {
		for _, n := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("participants-%d/%s", n, mode), func(b *testing.B) {
				w := newBenchWorld(b, spec)
				w.snip.DisableDelta = mode == "full"
				snippets := []*core.Snippet{w.snip}
				for i := 1; i < n; i++ {
					name := fmt.Sprintf("p%d.lan", i)
					pb := browser.New(name, w.corpus.Network.Dialer(name))
					b.Cleanup(pb.Close)
					s := core.NewSnippet(pb, "http://host.lan:3000", "")
					s.FetchObjects = false
					s.DisableDelta = mode == "full"
					if err := s.Join(); err != nil {
						b.Fatal(err)
					}
					snippets = append(snippets, s)
				}
				tick := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tick++
					err := w.host.ApplyMutation(func(doc *dom.Document) error {
						doc.Body().SetAttr("data-tick", fmt.Sprint(tick))
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, s := range snippets {
						if _, err := s.PollOnce(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// registerPollers wraps benchutil.RegisterPollers (shared with rcb-bench
// -fanout so the two measurements cannot drift) with b.Fatal error
// handling.
func registerPollers(b *testing.B, agent *core.Agent, n int) []*httpwire.Request {
	b.Helper()
	reqs, err := benchutil.RegisterPollers(agent, n)
	if err != nil {
		b.Fatal(err)
	}
	return reqs
}

// BenchmarkFanoutScale measures the agent serve path as participants scale
// to 16/64/256 in both modes: one document bump per iteration, then every
// participant polls. With encode-once generation the per-iteration cost is
// one Figure 3 pipeline plus N cheap cache-hit serves.
func BenchmarkFanoutScale(b *testing.B) {
	spec, _ := sites.SiteByName("google.com")
	for _, mode := range []struct {
		label string
		cache bool
	}{{"cache", true}, {"noncache", false}} {
		for _, n := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("%s/participants-%d", mode.label, n), func(b *testing.B) {
				w := newBenchWorld(b, spec)
				w.agent.DefaultCacheMode = mode.cache
				reqs := registerPollers(b, w.agent, n)
				tick := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tick++
					if err := benchutil.BumpDoc(w.host, tick); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if err := benchutil.ServeAll(w.agent, reqs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFanoutScaleDelta measures the serve path with delta-tracking
// participants: each poller acknowledges its previous docTime, so every
// post-warmup poll rides the shared deltaContent script — one diff plus N
// cheap cached serves per document change.
func BenchmarkFanoutScaleDelta(b *testing.B) {
	spec, _ := sites.SiteByName("google.com")
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("delta/participants-%d", n), func(b *testing.B) {
			w := newBenchWorld(b, spec)
			pollers, err := benchutil.RegisterTrackedPollers(w.agent, n)
			if err != nil {
				b.Fatal(err)
			}
			// Warm every poller onto the current version with a full sync.
			if err := benchutil.ServeAllTracked(w.agent, pollers); err != nil {
				b.Fatal(err)
			}
			tick := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tick++
				if err := benchutil.BumpDoc(w.host, tick); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := benchutil.ServeAllTracked(w.agent, pollers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaRing measures the serve path for a participant lagging
// behind the current build. The delta-base ring retains the last
// DefaultDeltaRingDepth replaced builds, so a poller up to ring-depth
// versions behind still rides the cached delta path — allocs/op within a
// small factor of the one-behind case — while one build further it falls
// off the ring onto the full snapshot. wirebytes/op is the payload each
// poll carries.
func BenchmarkDeltaRing(b *testing.B) {
	spec, _ := sites.SiteByName("msn.com")
	const depth = core.DefaultDeltaRingDepth
	for _, lag := range []int{1, depth, depth + 1} {
		name := fmt.Sprintf("lag-%d", lag)
		if lag > depth {
			name = fmt.Sprintf("lag-%d-offring", lag)
		}
		b.Run(name, func(b *testing.B) {
			w := newBenchWorld(b, spec)
			pollers, err := benchutil.RegisterTrackedPollers(w.agent, 2)
			if err != nil {
				b.Fatal(err)
			}
			if err := benchutil.ServeAllTracked(w.agent, pollers); err != nil {
				b.Fatal(err)
			}
			current, laggard := pollers[0], pollers[1]
			base := laggard.DocTime()
			// Advance the session lag builds with only the current poller
			// keeping up; each build rotates the replaced one into the ring.
			for tick := 1; tick <= lag; tick++ {
				if err := benchutil.BumpDoc(w.host, tick); err != nil {
					b.Fatal(err)
				}
				if _, err := current.Serve(w.agent); err != nil {
					b.Fatal(err)
				}
			}
			resp, err := laggard.ServeAt(w.agent, base)
			if err != nil {
				b.Fatal(err)
			}
			if isDelta := core.MessageIsDelta(resp.Body); isDelta != (lag <= depth) {
				b.Fatalf("lag %d (ring depth %d): delta=%v", lag, depth, isDelta)
			}
			wire := len(resp.Body)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := laggard.ServeAt(w.agent, base); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(wire), "wirebytes/op")
		})
	}
}

// BenchmarkDeltaApply isolates the participant-side apply path for one
// small host edit: "full" unmarshals the whole snapshot and re-parses the
// changed region (what every content change cost before deltas), "delta"
// unmarshals and applies the patch script in place. allocs/op is the
// headline number — the apply path was the dominant allocation source in
// the fan-out profiles.
func BenchmarkDeltaApply(b *testing.B) {
	spec, _ := sites.SiteByName("msn.com")
	w := newBenchWorld(b, spec)
	base, delta, full, err := benchutil.SmallEditDeltaScenario(w.host, w.agent)
	if err != nil {
		b.Fatal(err)
	}
	baseContent, err := core.Unmarshal(base)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("delta", func(b *testing.B) {
		doc := benchutil.ParticipantDoc()
		var memo core.ApplyMemo
		if err := memo.Apply(doc, baseContent); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(delta)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := core.UnmarshalDelta(delta)
			if err != nil {
				b.Fatal(err)
			}
			if err := memo.ApplyDelta(doc, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		doc := benchutil.ParticipantDoc()
		b.SetBytes(int64(len(full)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := core.Unmarshal(full)
			if err != nil {
				b.Fatal(err)
			}
			if err := core.ApplyContentToDocument(doc, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLongPollFanout measures the push path at scale: N participants
// park hanging-GET polls over the virtual wire, then one host document
// change wakes them all. The timed region is bump-to-all-applied — the
// end-to-end fan-out latency of the long-poll channel — and builds/op
// verifies the single-flight invariant holds on the wake path (1.0 = one
// BuildContent no matter how many parked polls woke).
func BenchmarkLongPollFanout(b *testing.B) {
	spec, _ := sites.SiteByName("google.com")
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("participants-%d", n), func(b *testing.B) {
			w := newBenchWorld(b, spec)
			snippets := []*core.Snippet{w.snip}
			for i := 1; i < n; i++ {
				name := fmt.Sprintf("lp%d.lan", i)
				pb := browser.New(name, w.corpus.Network.Dialer(name))
				b.Cleanup(pb.Close)
				s := core.NewSnippet(pb, "http://host.lan:3000", "")
				s.FetchObjects = false
				if err := s.Join(); err != nil {
					b.Fatal(err)
				}
				snippets = append(snippets, s)
			}
			for _, s := range snippets {
				s.Delivery = core.DeliveryLongPoll
				s.LongPollWait = 30 * time.Second
				if _, err := s.PollOnce(); err != nil { // warm onto the current version
					b.Fatal(err)
				}
			}
			b.Cleanup(w.agent.Close) // drain parked polls left by the last iteration

			builds0 := w.agent.ContentBuilds()
			tick := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var wg sync.WaitGroup
				errs := make([]error, len(snippets))
				for j, s := range snippets {
					wg.Add(1)
					go func(j int, s *core.Snippet) {
						defer wg.Done()
						updated, err := s.PollOnce()
						if err == nil && !updated {
							err = fmt.Errorf("poll %d woke without content", j)
						}
						errs[j] = err
					}(j, s)
				}
				for w.agent.ParkedPolls() < n {
					time.Sleep(50 * time.Microsecond)
				}
				tick++
				b.StartTimer()
				if err := benchutil.BumpDoc(w.host, tick); err != nil {
					b.Fatal(err)
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(w.agent.ContentBuilds()-builds0)/float64(b.N), "builds/op")
		})
	}
}

// BenchmarkDuplexFanout is the persistent-channel counterpart of
// BenchmarkLongPollFanout: the same participant counts hold framed channels
// instead of parked long-polls, so one host change is one shared build fanned
// out as frames — no request parse, no per-update HMAC, no park/wake — and
// the B/op and allocs/op columns are directly comparable between the two.
func BenchmarkDuplexFanout(b *testing.B) {
	spec, _ := sites.SiteByName("google.com")
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("participants-%d", n), func(b *testing.B) {
			w := newBenchWorld(b, spec)
			snippets := []*core.Snippet{w.snip}
			for i := 1; i < n; i++ {
				name := fmt.Sprintf("dx%d.lan", i)
				pb := browser.New(name, w.corpus.Network.Dialer(name))
				b.Cleanup(pb.Close)
				s := core.NewSnippet(pb, "http://host.lan:3000", "")
				s.FetchObjects = false
				if err := s.Join(); err != nil {
					b.Fatal(err)
				}
				snippets = append(snippets, s)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for _, s := range snippets {
				s.Delivery = core.DeliveryDuplex
				wg.Add(1)
				go func(s *core.Snippet) {
					defer wg.Done()
					// A stampede of simultaneous upgrades can overflow the
					// listener backlog; retry like the Run loop would until
					// the channel holds or the benchmark ends.
					for {
						s.DuplexOnce(stop)
						select {
						case <-stop:
							return
						default:
							time.Sleep(time.Millisecond)
						}
					}
				}(s)
			}
			b.Cleanup(func() {
				close(stop)
				wg.Wait()
			})
			// Warm: every channel attached and the initial snapshot applied.
			for w.agent.ChannelsOpen() < int64(n) {
				time.Sleep(50 * time.Microsecond)
			}
			for _, s := range snippets {
				for s.DocTime() == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}

			builds0 := w.agent.ContentBuilds()
			frames0 := w.agent.FramesOut()
			tick := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				marks := make([]int64, len(snippets))
				for j, s := range snippets {
					marks[j] = s.Stats().ContentPolls
				}
				tick++
				b.StartTimer()
				if err := benchutil.BumpDoc(w.host, tick); err != nil {
					b.Fatal(err)
				}
				for j, s := range snippets {
					for s.Stats().ContentPolls == marks[j] {
						time.Sleep(20 * time.Microsecond)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(w.agent.ContentBuilds()-builds0)/float64(b.N), "builds/op")
			b.ReportMetric(float64(w.agent.FramesOut()-frames0)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkConcurrentPoll stresses the single-flight guard: 64 participants
// poll simultaneously immediately after a version bump, the worst case for
// redundant generation. builds/op reports how many Figure 3 pipelines ran
// per iteration — 1.0 with single-flight, up to 64 without it.
func BenchmarkConcurrentPoll(b *testing.B) {
	spec, _ := sites.SiteByName("msn.com")
	w := newBenchWorld(b, spec)
	const n = 64
	reqs := registerPollers(b, w.agent, n)
	tick := 0
	builds0 := w.agent.ContentBuilds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tick++
		if err := benchutil.BumpDoc(w.host, tick); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for _, req := range reqs {
			wg.Add(1)
			go func(req *httpwire.Request) {
				defer wg.Done()
				if resp := w.agent.ServeWire(req); resp.StatusCode != 200 {
					b.Errorf("poll returned %d", resp.StatusCode)
				}
			}(req)
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(w.agent.ContentBuilds()-builds0)/float64(b.N), "builds/op")
}

// BenchmarkMirrorSplice measures per-participant message assembly when a
// poll must carry pending mirror actions: the cached document payload is
// spliced, never re-rendered.
func BenchmarkMirrorSplice(b *testing.B) {
	spec, _ := sites.SiteByName("msn.com")
	w := newBenchWorld(b, spec)
	prep, err := w.agent.BuildContent(false)
	if err != nil {
		b.Fatal(err)
	}
	actions := []core.Action{
		{Kind: core.ActionMouseMove, X: 12, Y: 400, From: "p2"},
		{Kind: core.ActionScroll, Y: 250, From: "p3"},
	}
	b.SetBytes(int64(len(prep.XML())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := prep.WithUserActions(actions); len(out) <= len(prep.XML()) {
			b.Fatal("splice produced no insertion")
		}
	}
}

// BenchmarkAblationPollInterval reports the staleness/overhead trade-off of
// §3.2.3's poll model for the 1-second interval the paper chose, against
// the push alternative.
func BenchmarkAblationPollInterval(b *testing.B) {
	spec, _ := sites.SiteByName("msn.com")
	res, err := experiment.RunSite(spec, experiment.LAN, experiment.Options{Reps: 1})
	if err != nil {
		b.Fatal(err)
	}
	intervals := []time.Duration{250 * time.Millisecond, time.Second, 5 * time.Second}
	b.ResetTimer()
	var points []experiment.PollIntervalPoint
	for i := 0; i < b.N; i++ {
		points = SweepShim(res, intervals)
	}
	if len(points) == 3 {
		b.ReportMetric(points[1].MeanStaleness.Seconds()*1000, "staleness1s_ms")
		pushPoll := experiment.ComparePushVsPoll(res.SyncTxn, experiment.LAN, time.Second)
		b.ReportMetric(pushPoll.PushStaleness.Seconds()*1000, "push_ms")
	}
}

// SweepShim keeps the benchmarked call observable to the compiler.
func SweepShim(res *experiment.SiteResult, intervals []time.Duration) []experiment.PollIntervalPoint {
	return experiment.SweepPollInterval(res.SyncTxn, experiment.LAN, intervals)
}

// BenchmarkMessageCodec measures Figure 4 marshal/unmarshal for a mid-size
// page's content.
func BenchmarkMessageCodec(b *testing.B) {
	spec, _ := sites.SiteByName("msn.com")
	w := newBenchWorld(b, spec)
	prep, err := w.agent.BuildContent(false)
	if err != nil {
		b.Fatal(err)
	}
	xml := prep.XML()
	content, err := core.Unmarshal(xml)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		b.SetBytes(int64(len(xml)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			content.Marshal()
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.SetBytes(int64(len(xml)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Unmarshal(xml); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationResponseAuth measures the §3.4 future-work cost the
// paper deferred: sealing (AES-CTR + HMAC) and opening a full content
// response, as a function of page size. This is the "inefficient for large
// responses" cost the authors avoided in JavaScript.
func BenchmarkAblationResponseAuth(b *testing.B) {
	for _, name := range []string{"google.com", "yahoo.com", "amazon.com"} {
		spec, _ := sites.SiteByName(name)
		b.Run(name, func(b *testing.B) {
			w := newBenchWorld(b, spec)
			prep, err := w.agent.BuildContent(false)
			if err != nil {
				b.Fatal(err)
			}
			protector := core.NewResponseProtector(core.NewSessionKey())
			body := prep.XML()
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sealed := protector.Seal(body)
				if _, err := protector.Open(sealed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMobileM5 measures content generation under the Fennec/N810
// device profile of the paper's §6 preliminary mobile experiment.
func BenchmarkMobileM5(b *testing.B) {
	spec, _ := sites.SiteByName("google.com")
	res, err := experiment.RunMobile(spec, experiment.N810, experiment.Options{Reps: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := newBenchWorld(b, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.agent.BuildContent(false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.M5NonCache.Seconds()*1000, "M5_n810_ms")
	b.ReportMetric(res.M2.Seconds()*1000, "M2_wifi_ms")
}
